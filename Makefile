# Development entry points. `make check` is the gate every change must
# pass: build, vet, and the full test suite under the race detector
# (the scheduling path runs worker pools and a shared cache, so -race is
# not optional).

GO ?= go

.PHONY: check build vet test race bench bench-sched clean

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Scheduling-path microbenchmarks (ns/op plus cache-hit-rate), captured
# as a machine-readable stream in BENCH_sched.json for before/after
# comparison. See DESIGN.md "Performance architecture".
bench-sched:
	$(GO) test -run '^$$' -bench 'PlanLarge|ScheduleHotLoop|SimulatorThroughput|BlossomScalability' \
		-benchtime 3x -json . | tee BENCH_sched.json

# Full evaluation benchmark sweep (regenerates every table/figure once).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

clean:
	rm -f BENCH_sched.json cpu.pprof mem.pprof
