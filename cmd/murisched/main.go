// Command murisched runs the Muri scheduler daemon (paper Figure 3):
// executors connect with muriexec, clients submit jobs with murictl.
//
// Usage:
//
//	murisched -addr :7800 -policy muri-l -interval 6m -timescale 0.001
//
// -debug-addr serves the observability surface over HTTP: /metrics
// (Prometheus text), /debug/vars (expvar), /debug/pprof/, and the JSON
// submission API. -http-addr serves the submission API alone, for
// deployments that keep ingest and debug on separate ports. SIGINT
// drains gracefully: new submissions are rejected while running groups
// finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"muri/internal/profile"
	"muri/internal/sched"
	"muri/internal/server"
	"muri/internal/telemetry"
)

// policyByName resolves a policy; the -pred variants read their duration
// beliefs from est, the daemon's online predictor (every completion the
// daemon observes updates it), instead of submitted oracle profiles.
func policyByName(name string, est *profile.Online) (sched.Policy, error) {
	switch name {
	case "fifo":
		return sched.FIFO(), nil
	case "srtf":
		return sched.SRTF(), nil
	case "srtf-pred":
		return sched.SRTFPredicted(est), nil
	case "srsf":
		return sched.SRSF(), nil
	case "srsf-pred":
		return sched.SRSFPredicted(est), nil
	case "tiresias":
		return sched.Tiresias(), nil
	case "themis":
		return sched.Themis(), nil
	case "antman":
		return sched.AntMan{}, nil
	case "gittins-pred":
		return sched.NewGittinsFromEstimator(est), nil
	case "muri-s":
		return sched.NewMuriS(), nil
	case "muri-l":
		return sched.NewMuriL(), nil
	case "muri-l-pred":
		return sched.NewMuriLPredicted(est), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":7800", "listen address")
		policy    = flag.String("policy", "muri-l", "scheduling policy (fifo|srtf|srsf|tiresias|themis|antman|muri-s|muri-l; -pred variants use the online predictor: srtf-pred|srsf-pred|muri-l-pred|gittins-pred)")
		interval  = flag.Duration("interval", time.Second, "scheduling interval (wall time)")
		timeScale = flag.Float64("timescale", 0.001, "virtual-to-wall time scale forwarded to executors")
		report    = flag.Duration("report", 200*time.Millisecond, "executor progress-report period")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof, and the JSON API on this address")
		httpAddr  = flag.String("http-addr", "", "serve the JSON submission API (/api/v1/...) on this address")
		logLevel  = flag.String("log-level", "info", "minimum log level (debug|info|warn|error)")

		ingestCap   = flag.Int("ingest-cap", 0, "admission queue capacity (0 = default 65536)")
		batchDelay  = flag.Duration("max-batch-delay", 0, "linger after a submission before scheduling, to batch arrivals (0 = immediate)")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant sustained submission rate in jobs/sec (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant submission burst size (0 = derive from -tenant-rate)")
		drainWait   = flag.Duration("drain-timeout", time.Minute, "on SIGINT, how long to wait for running groups before closing")

		stateDir     = flag.String("state-dir", "", "durability directory: WAL + snapshots (empty = in-memory daemon)")
		fsyncEvery   = flag.Int("fsync-every", 0, "fsync the WAL every N records (0 = default 64; 1 = per record)")
		snapEvery    = flag.Duration("snapshot-interval", 0, "full-state snapshot cadence (0 = default 10s)")
		segmentBytes = flag.Int64("segment-bytes", 0, "WAL segment size cap in bytes (0 = default)")
		standbyOf    = flag.String("standby-of", "", "run as warm standby replicating the leader at this address (requires -state-dir)")
		standbyID    = flag.String("standby-id", "", "standby identity on the replication stream (default: the machine role)")
		electionTTL  = flag.Duration("election-ttl", 0, "leader lease: standby promotes after this much silence (0 = default 2s)")
		unsafeDebug  = flag.Bool("unsafe-debug", false, "enable the crash-injection debug RPC (murictl debug crash); never in production")
	)
	flag.Parse()

	// One predictor serves both the daemon (which feeds it completions)
	// and any prediction-aware policy (which reads beliefs from it).
	predictor := profile.NewOnline()
	p, err := policyByName(*policy, predictor)
	if err != nil {
		fmt.Fprintf(os.Stderr, "murisched: %v\n", err)
		os.Exit(2)
	}
	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "murisched: %v\n", err)
		os.Exit(2)
	}
	sid := *standbyID
	if sid == "" {
		sid = "standby"
	}
	srv := server.New(server.Config{
		Policy:         p,
		Predictor:      predictor,
		Interval:       *interval,
		TimeScale:      *timeScale,
		ReportEvery:    *report,
		LogLevel:       level,
		IngestCapacity: *ingestCap,
		MaxBatchDelay:  *batchDelay,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
		StateDir:       *stateDir,
		FsyncEvery:     *fsyncEvery,
		SnapshotEvery:  *snapEvery,
		SegmentBytes:   *segmentBytes,
		StandbyOf:      *standbyOf,
		StandbyID:      sid,
		ElectionTTL:    *electionTTL,
		UnsafeDebug:    *unsafeDebug,
	})
	if *debugAddr != "" {
		go func() {
			log.Printf("murisched: debug endpoints on http://%s/metrics", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, srv.DebugHandler()); err != nil {
				log.Fatalf("murisched: debug server: %v", err)
			}
		}()
	}
	if *httpAddr != "" {
		go func() {
			log.Printf("murisched: HTTP submission API on http://%s/api/v1/submit", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, srv.APIHandler()); err != nil {
				log.Fatalf("murisched: http server: %v", err)
			}
		}()
	}

	// SIGINT/SIGTERM drain gracefully: stop admitting, let running groups
	// finish (up to -drain-timeout), then close.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("murisched: %v: draining (timeout %v)", sig, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Stop(ctx); err != nil {
			log.Printf("murisched: drain cut short: %v", err)
		}
	}()

	switch {
	case *standbyOf != "":
		log.Printf("murisched: warm standby of %s (state %s), listening on %s", *standbyOf, *stateDir, *addr)
	case *stateDir != "":
		log.Printf("murisched: %s policy, durable state in %s, listening on %s", p.Name(), *stateDir, *addr)
	default:
		log.Printf("murisched: %s policy, listening on %s", p.Name(), *addr)
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("murisched: %v", err)
	}
	log.Printf("murisched: shut down cleanly")
}
