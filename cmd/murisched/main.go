// Command murisched runs the Muri scheduler daemon (paper Figure 3):
// executors connect with muriexec, clients submit jobs with murictl.
//
// Usage:
//
//	murisched -addr :7800 -policy muri-l -interval 6m -timescale 0.001
//
// -debug-addr serves the observability surface over HTTP: /metrics
// (Prometheus text), /debug/vars (expvar), and /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"muri/internal/sched"
	"muri/internal/server"
	"muri/internal/telemetry"
)

func policyByName(name string) (sched.Policy, error) {
	switch name {
	case "fifo":
		return sched.FIFO(), nil
	case "srtf":
		return sched.SRTF(), nil
	case "srsf":
		return sched.SRSF(), nil
	case "tiresias":
		return sched.Tiresias(), nil
	case "themis":
		return sched.Themis(), nil
	case "antman":
		return sched.AntMan{}, nil
	case "muri-s":
		return sched.NewMuriS(), nil
	case "muri-l":
		return sched.NewMuriL(), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":7800", "listen address")
		policy    = flag.String("policy", "muri-l", "scheduling policy (fifo|srtf|srsf|tiresias|themis|antman|muri-s|muri-l)")
		interval  = flag.Duration("interval", time.Second, "scheduling interval (wall time)")
		timeScale = flag.Float64("timescale", 0.001, "virtual-to-wall time scale forwarded to executors")
		report    = flag.Duration("report", 200*time.Millisecond, "executor progress-report period")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address")
		logLevel  = flag.String("log-level", "info", "minimum log level (debug|info|warn|error)")
	)
	flag.Parse()

	p, err := policyByName(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "murisched: %v\n", err)
		os.Exit(2)
	}
	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "murisched: %v\n", err)
		os.Exit(2)
	}
	srv := server.New(server.Config{
		Policy:      p,
		Interval:    *interval,
		TimeScale:   *timeScale,
		ReportEvery: *report,
		LogLevel:    level,
	})
	if *debugAddr != "" {
		go func() {
			log.Printf("murisched: debug endpoints on http://%s/metrics", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, srv.DebugHandler()); err != nil {
				log.Fatalf("murisched: debug server: %v", err)
			}
		}()
	}
	log.Printf("murisched: %s policy, listening on %s", p.Name(), *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("murisched: %v", err)
	}
}
