// Command loadgen drives submission load against a running scheduler
// daemon and reports ingest throughput: p50/p99 submit latency,
// accept/reject/throttle counts, and how many engine rounds the burst
// cost (the batched-admission collapse factor).
//
// Two transports are exercised, matching the daemon's two front doors:
//
//	proto — pipelined submit frames over persistent TCP connections
//	http  — JSON batches against /api/v1/submit/batch
//
// Usage (against a live daemon):
//
//	loadgen -scheduler localhost:7800 -rate 120000 -duration 30s
//	loadgen -http localhost:7801 -transport http -batch 64
//	loadgen -transport both -scheduler localhost:7800 -http localhost:7801
//
// Or self-contained (starts an in-process daemon plus one executor, the
// mode `make bench-ingest` and CI use):
//
//	loadgen -selfhost -rate 120000 -duration 30s -json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"muri/internal/executor"
	"muri/internal/ingest"
	"muri/internal/metrics"
	"muri/internal/proto"
	"muri/internal/sched"
	"muri/internal/server"
	"muri/internal/workload"
)

func main() {
	var (
		scheduler = flag.String("scheduler", "localhost:7800", "scheduler proto address")
		httpAddr  = flag.String("http", "", "scheduler HTTP API address (host:port)")
		transport = flag.String("transport", "proto", "submission transport: proto | http | both")
		rate      = flag.Int("rate", 120000, "target submission rate, jobs per minute (0 = as fast as possible)")
		duration  = flag.Duration("duration", 30*time.Second, "how long to sustain the load")
		conns     = flag.Int("conns", 8, "concurrent submitters per transport")
		window    = flag.Int("window", 256, "proto: max unacked frames in flight per connection")
		batch     = flag.Int("batch", 64, "http: jobs per batch request")
		tenants   = flag.Int("tenants", 1, "spread submissions across this many tenant names")
		seed      = flag.Int64("seed", 1, "workload-mix RNG seed")
		jsonOut   = flag.Bool("json", false, "emit the report as one JSON line on stdout")
		selfhost  = flag.Bool("selfhost", false, "start an in-process daemon + executor and load it")
	)
	flag.Parse()

	if *selfhost {
		stop, protoAddr, apiAddr, err := startSelfhost()
		if err != nil {
			log.Fatalf("loadgen: selfhost: %v", err)
		}
		defer stop()
		*scheduler = protoAddr
		*httpAddr = apiAddr
	}

	useProto := *transport == "proto" || *transport == "both"
	useHTTP := *transport == "http" || *transport == "both"
	if !useProto && !useHTTP {
		log.Fatalf("loadgen: unknown transport %q", *transport)
	}
	if useHTTP && *httpAddr == "" {
		log.Fatal("loadgen: http transport needs -http host:port")
	}

	// Status snapshots bracket the run: engine-round and batch deltas tell
	// us what the burst cost on the scheduling side.
	stc, err := server.Dial(*scheduler)
	if err != nil {
		log.Fatalf("loadgen: dial scheduler: %v", err)
	}
	defer stc.Close()
	st0, err := stc.Status()
	if err != nil {
		log.Fatalf("loadgen: status: %v", err)
	}

	nTransports := 0
	if useProto {
		nTransports++
	}
	if useHTTP {
		nTransports++
	}
	perWorker := float64(*rate) / 60.0 / float64(*conns*nTransports)

	var wg sync.WaitGroup
	workers := make([]*workerStats, 0, *conns*nTransports)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	for i := 0; i < *conns; i++ {
		specs := newSpecSource(*seed+int64(i), *tenants)
		if useProto {
			ws := newWorkerStats()
			workers = append(workers, ws)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := protoWorker(*scheduler, *window, perWorker, deadline, specs, ws); err != nil {
					log.Printf("loadgen: proto worker: %v", err)
				}
			}()
		}
		if useHTTP {
			ws := newWorkerStats()
			workers = append(workers, ws)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := httpWorker(*httpAddr, *batch, perWorker, deadline, specs.clone(), ws); err != nil {
					log.Printf("loadgen: http worker: %v", err)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	st1, err := stc.Status()
	if err != nil {
		log.Fatalf("loadgen: status: %v", err)
	}

	total := newWorkerStats()
	for _, ws := range workers {
		total.merge(ws)
	}
	rounds := 0
	batches := 0
	if st0.Engine != nil && st1.Engine != nil {
		rounds = st1.Engine.Rounds - st0.Engine.Rounds
	}
	if st0.Ingest != nil && st1.Ingest != nil {
		batches = st1.Ingest.Batches - st0.Ingest.Batches
	}

	rep := report{
		Name:       "loadgen",
		Transport:  *transport,
		DurationS:  elapsed.Seconds(),
		Sent:       total.sent,
		Accepted:   total.accepted,
		Rejected:   total.rejected,
		Throttled:  total.throttled,
		Errors:     total.failed,
		RatePerMin: float64(total.sent) / elapsed.Minutes(),
		P50Ms:      total.lat.Quantile(0.50) * 1000,
		P99Ms:      total.lat.Quantile(0.99) * 1000,
		Rounds:     rounds,
		RoundsPS:   float64(rounds) / elapsed.Seconds(),
		Batches:    batches,
	}
	if *jsonOut {
		out, _ := json.Marshal(rep)
		fmt.Println(string(out))
	} else {
		fmt.Printf("loadgen: %s over %v\n", *transport, elapsed.Round(time.Millisecond))
		fmt.Printf("  submitted %d jobs (%.0f/min): %d accepted, %d rejected, %d throttled, %d transport errors\n",
			rep.Sent, rep.RatePerMin, rep.Accepted, rep.Rejected, rep.Throttled, rep.Errors)
		fmt.Printf("  submit latency p50=%.3fms p99=%.3fms\n", rep.P50Ms, rep.P99Ms)
		fmt.Printf("  engine: %d rounds (%.2f/s), %d admission batches (avg %.0f jobs/batch)\n",
			rep.Rounds, rep.RoundsPS, rep.Batches, avg(rep.Accepted, rep.Batches))
	}
	if total.accepted == 0 {
		log.Fatal("loadgen: no submission was accepted")
	}
}

func avg(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// report is the machine-readable result line (appended to
// BENCH_sched.json by `make bench-ingest`).
type report struct {
	Name       string  `json:"name"`
	Transport  string  `json:"transport"`
	DurationS  float64 `json:"duration_s"`
	Sent       int     `json:"sent"`
	Accepted   int     `json:"accepted"`
	Rejected   int     `json:"rejected"`
	Throttled  int     `json:"throttled"`
	Errors     int     `json:"errors"`
	RatePerMin float64 `json:"rate_per_min"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	Rounds     int     `json:"engine_rounds"`
	RoundsPS   float64 `json:"rounds_per_sec"`
	Batches    int     `json:"admission_batches"`
}

// workerStats accumulates one worker's counters and latency histogram;
// workers are single-goroutine, merged after the run.
type workerStats struct {
	sent, accepted, rejected, throttled, failed int
	lat                                         *metrics.Histogram
}

func newWorkerStats() *workerStats {
	// 10µs .. ~80s in ×1.5 steps: fine enough for sub-millisecond p50s.
	return &workerStats{lat: metrics.NewHistogram(metrics.ExponentialBounds(10e-6, 1.5, 40)...)}
}

func (w *workerStats) merge(o *workerStats) {
	w.sent += o.sent
	w.accepted += o.accepted
	w.rejected += o.rejected
	w.throttled += o.throttled
	w.failed += o.failed
	w.lat.Merge(o.lat)
}

func (w *workerStats) countResult(err error) {
	switch {
	case err == nil:
		w.accepted++
	case errors.Is(err, ingest.ErrThrottled):
		w.throttled++
	default:
		w.rejected++
	}
}

// specSource deals out job specs with a realistic model mix. Explicit
// stage vectors skip scheduler-side profiling — the load test measures
// ingest and scheduling, not the profiler. Huge iteration counts keep
// the jobs pending for the whole run, so the scheduler carries the full
// backlog.
type specSource struct {
	rng     *rand.Rand
	zoo     []workload.Model
	tenants int
}

func newSpecSource(seed int64, tenants int) *specSource {
	return &specSource{rng: rand.New(rand.NewSource(seed)), zoo: workload.Zoo(), tenants: tenants}
}

func (s *specSource) clone() *specSource {
	return &specSource{rng: rand.New(rand.NewSource(s.rng.Int63())), zoo: s.zoo, tenants: s.tenants}
}

func (s *specSource) next() proto.JobSpec {
	m := s.zoo[s.rng.Intn(len(s.zoo))]
	spec := proto.JobSpec{
		Model:      m.Name,
		GPUs:       1 << s.rng.Intn(3), // 1, 2, or 4
		Iterations: 1 << 30,
	}
	copy(spec.Stages[:], m.Stages[:])
	if s.tenants > 1 {
		spec.Tenant = fmt.Sprintf("tenant-%d", s.rng.Intn(s.tenants))
	}
	return spec
}

// pace sleeps until the next send slot at ratePerSec (no-op when the
// rate is uncapped or the worker is behind schedule).
func pace(start time.Time, sent int, ratePerSec float64) {
	if ratePerSec <= 0 {
		return
	}
	next := start.Add(time.Duration(float64(sent) / ratePerSec * float64(time.Second)))
	if d := time.Until(next); d > 0 {
		time.Sleep(d)
	}
}

// protoWorker streams pipelined submit frames over one connection.
func protoWorker(addr string, window int, ratePerSec float64, deadline time.Time, specs *specSource, ws *workerStats) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	stream := c.SubmitStream(window)
	var mu sync.Mutex // guards ws between the ack reader and the final merge
	done := make(chan struct{})
	go func() {
		defer close(done)
		for res := range stream.Results() {
			mu.Lock()
			ws.countResult(res.Err)
			ws.lat.ObserveDuration(res.RTT)
			mu.Unlock()
		}
	}()
	start := time.Now()
	sent := 0
	for time.Now().Before(deadline) {
		if err := stream.Send(specs.next()); err != nil {
			break
		}
		sent++
		pace(start, sent, ratePerSec)
	}
	stream.CloseSend()
	<-done
	mu.Lock()
	ws.sent = sent
	ws.failed = sent - (ws.accepted + ws.rejected + ws.throttled)
	mu.Unlock()
	return stream.Err()
}

// httpWorker posts JSON batches against /api/v1/submit/batch. Each
// job's recorded latency is its batch's request time — what a caller
// of the HTTP API actually waits.
func httpWorker(addr string, batch int, ratePerSec float64, deadline time.Time, specs *specSource, ws *workerStats) error {
	if batch < 1 {
		batch = 1
	}
	url := "http://" + addr + "/api/v1/submit/batch"
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var lastErr error
	for time.Now().Before(deadline) {
		req := proto.HTTPBatchRequest{Jobs: make([]proto.JobSpec, batch)}
		for i := range req.Jobs {
			req.Jobs[i] = specs.next()
		}
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		rtt := time.Since(t0)
		ws.sent += batch
		if err != nil {
			ws.failed += batch
			lastErr = err
			pace(start, ws.sent, ratePerSec)
			continue
		}
		var br proto.HTTPBatchResponse
		err = json.NewDecoder(resp.Body).Decode(&br)
		resp.Body.Close()
		if err != nil || len(br.Results) != batch {
			ws.failed += batch
			lastErr = fmt.Errorf("bad batch response: %v", err)
			pace(start, ws.sent, ratePerSec)
			continue
		}
		for _, res := range br.Results {
			if res.Err == "" {
				ws.accepted++
			} else if res.Code == proto.CodeThrottled {
				ws.throttled++
			} else {
				ws.rejected++
			}
			ws.lat.ObserveDuration(rtt)
		}
		pace(start, ws.sent, ratePerSec)
	}
	return lastErr
}

// startSelfhost spins up an in-process daemon plus one 8-GPU executor
// so the benchmark runs with no external setup. FIFO keeps planning
// rounds cheap at six-figure queue depths; a small batch delay lets
// arrivals coalesce the way a production deployment would configure it.
func startSelfhost() (stop func(), protoAddr, apiAddr string, err error) {
	srv := server.New(server.Config{
		Policy:        sched.FIFO(),
		Interval:      time.Second,
		MaxBatchDelay: 5 * time.Millisecond,
		Logf:          func(string, ...any) {}, // keep the report readable
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", "", err
	}
	go func() { _ = srv.Serve(ln) }()

	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		return nil, "", "", err
	}
	go func() { _ = http.Serve(hln, srv.APIHandler()) }()

	ctx, cancel := context.WithCancel(context.Background())
	agent := &executor.Agent{MachineID: "selfhost-0", GPUs: 8, Logf: func(string, ...any) {}}
	go func() { _ = agent.Run(ctx, ln.Addr().String()) }()

	// Wait for the executor to register before loading the daemon.
	c, err := server.Dial(ln.Addr().String())
	if err != nil {
		cancel()
		ln.Close()
		hln.Close()
		return nil, "", "", err
	}
	defer c.Close()
	for i := 0; ; i++ {
		st, err := c.Status()
		if err == nil && st.Executors == 1 {
			break
		}
		if i > 200 {
			cancel()
			ln.Close()
			hln.Close()
			return nil, "", "", fmt.Errorf("selfhost executor never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop = func() {
		cancel()
		srv.Close()
		hln.Close()
	}
	return stop, ln.Addr().String(), hln.Addr().String(), nil
}
