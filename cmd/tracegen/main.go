// Command tracegen emits a synthetic Philly-like DL job trace as CSV.
//
// Usage:
//
//	tracegen -jobs 992 -seed 1 -interarrival 90s > trace1.csv
//	tracegen -jobs 400 -zero-submit -types 2 -o trace.csv
//	tracegen -preset philly-5755 -o trace4.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"muri/internal/trace"
)

// presetConfigs returns every named preset: the four PhillyConfigs scale
// points (philly-992 … philly-5755, by job count) plus the sharded-
// scheduler scale tiers (philly-10000, philly-50k), seeded and
// parameterized exactly as the benchmark suite generates them.
func presetConfigs(maxGPUs int) []trace.GenConfig {
	return append(trace.PhillyConfigs(maxGPUs), trace.ScaleConfigs(maxGPUs)...)
}

// presetConfig resolves a -preset name, accepting either the config's own
// name (philly-50k) or the philly-<jobs> form.
func presetConfig(name string, maxGPUs int) (trace.GenConfig, bool) {
	for _, cfg := range presetConfigs(maxGPUs) {
		if name == cfg.Name || name == fmt.Sprintf("philly-%d", cfg.Jobs) {
			return cfg, true
		}
	}
	return trace.GenConfig{}, false
}

// presetNames lists the accepted -preset values.
func presetNames(maxGPUs int) string {
	var names []string
	for _, cfg := range presetConfigs(maxGPUs) {
		if strings.HasPrefix(cfg.Name, "philly-") {
			names = append(names, cfg.Name)
		} else {
			names = append(names, fmt.Sprintf("philly-%d", cfg.Jobs))
		}
	}
	return strings.Join(names, ", ")
}

func main() {
	var (
		preset       = flag.String("preset", "", "standard trace preset ("+presetNames(64)+"); overrides jobs/seed/interarrival/median/maxdur/types")
		jobs         = flag.Int("jobs", 992, "number of jobs")
		seed         = flag.Int64("seed", 1, "RNG seed")
		interarrival = flag.Duration("interarrival", 90*time.Second, "mean job inter-arrival time")
		median       = flag.Duration("median", 20*time.Minute, "median job duration")
		maxDur       = flag.Duration("maxdur", 24*time.Hour, "maximum job duration (before the large-job cap)")
		maxGPUs      = flag.Int("maxgpus", 64, "largest job GPU count")
		types        = flag.Int("types", 4, "number of bottleneck job types (1-4)")
		zeroSubmit   = flag.Bool("zero-submit", false, "set every submission time to zero (the trace-prime variants)")
		out          = flag.String("o", "", "output file (default stdout)")
		name         = flag.String("name", "trace", "trace name")
		stats        = flag.Bool("stats", false, "print workload statistics to stderr")
		capacity     = flag.Int("capacity", 64, "cluster GPU capacity used for the load-factor statistic")
	)
	flag.Parse()

	cfg := trace.GenConfig{
		Name:             *name,
		Jobs:             *jobs,
		Seed:             *seed,
		MeanInterarrival: *interarrival,
		MedianDuration:   *median,
		MaxDuration:      *maxDur,
		MaxGPUs:          *maxGPUs,
		JobTypes:         *types,
	}
	if *preset != "" {
		pc, ok := presetConfig(*preset, *maxGPUs)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracegen: unknown preset %q (have %s)\n", *preset, presetNames(*maxGPUs))
			os.Exit(2)
		}
		if *name != "trace" {
			pc.Name = *name
		}
		cfg = pc
	}
	tr := trace.Generate(cfg)
	if *zeroSubmit {
		tr = tr.ZeroSubmit()
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d jobs, %.1f GPU-hours\n", len(tr.Specs), tr.TotalGPUHours())
	if *stats {
		fmt.Fprintln(os.Stderr, tr.ComputeStats(*capacity).String())
	}
}
