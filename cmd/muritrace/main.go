// Command muritrace reconstructs decision provenance offline, from a
// scheduler daemon's WAL alone: point it at a -state-dir and it folds
// the recovered snapshot plus the record tail through the same explain
// builder the live daemon drives, so its output is byte-identical to
// what `murictl explain` reported from the running process — the CI
// smoke test diffs the two after a kill -9.
//
// Usage:
//
//	muritrace -state-dir /var/lib/muri explain -job 3
//	muritrace -state-dir /var/lib/muri explain            # every job
//	muritrace -state-dir /var/lib/muri spans -o spans.json # Chrome trace
package main

import (
	"flag"
	"fmt"
	"os"

	"muri/internal/explain"
	"muri/internal/telemetry"
	"muri/internal/wal"
)

func main() {
	stateDir := flag.String("state-dir", "", "scheduler WAL directory to reconstruct from")
	flag.Parse()
	args := flag.Args()
	if *stateDir == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "muritrace: need -state-dir and a subcommand: explain | spans")
		os.Exit(2)
	}

	b, err := rebuild(*stateDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "muritrace: %v\n", err)
		os.Exit(1)
	}

	switch args[0] {
	case "explain":
		fs := flag.NewFlagSet("explain", flag.ExitOnError)
		jobID := fs.Int64("job", 0, "explain this job (0 = every job)")
		_ = fs.Parse(args[1:])
		if *jobID > 0 {
			fmt.Print(b.RenderJob(*jobID))
			return
		}
		fmt.Print(b.RenderAll())
	case "spans":
		fs := flag.NewFlagSet("spans", flag.ExitOnError)
		out := fs.String("o", "", "write Chrome trace-event JSON here (default stdout)")
		_ = fs.Parse(args[1:])
		tr := telemetry.NewTracer(0)
		b.EmitSpans(tr)
		data, err := tr.ExportJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "muritrace: %v\n", err)
			os.Exit(1)
		}
		if *out == "" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "muritrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes); open in https://ui.perfetto.dev\n", *out, len(data))
	default:
		fmt.Fprintf(os.Stderr, "muritrace: unknown subcommand %q\n", args[0])
		os.Exit(2)
	}
}

// rebuild runs the recovery fold: snapshot-restored explain state plus
// every record after it, in LSN order — exactly what the live daemon's
// builder saw.
func rebuild(dir string) (*explain.Builder, error) {
	rec, err := wal.Recover(dir)
	if err != nil {
		return nil, err
	}
	b := explain.NewBuilder()
	if rec.Snapshot != nil {
		if err := b.Restore(rec.Snapshot.Explain); err != nil {
			return nil, fmt.Errorf("snapshot explain state: %w", err)
		}
	}
	for i := range rec.Records {
		b.Apply(&rec.Records[i])
	}
	if c := rec.Corruption; c != nil {
		fmt.Fprintf(os.Stderr, "muritrace: replay stopped at corrupt record (segment %d offset %d: %s); explaining the durable prefix\n",
			c.Segment, c.Offset, c.Reason)
	}
	return b, nil
}
