// Command muriexec runs a Muri executor agent on one machine: it
// registers its GPU inventory with the scheduler and executes
// interleaving groups with per-stage synchronization barriers.
//
// Usage:
//
//	muriexec -scheduler localhost:7800 -machine m0 -gpus 8
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"muri/internal/executor"
)

func main() {
	var (
		scheduler = flag.String("scheduler", "localhost:7800", "scheduler address")
		machine   = flag.String("machine", "m0", "machine identifier")
		gpus      = flag.Int("gpus", 8, "GPU inventory to advertise")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	agent := &executor.Agent{MachineID: *machine, GPUs: *gpus}
	log.Printf("muriexec: machine %s (%d GPUs) connecting to %s", *machine, *gpus, *scheduler)
	// Reconnect with backoff across scheduler restarts; ^C exits.
	if err := agent.RunWithRetry(ctx, *scheduler, 30*time.Second); err != nil && ctx.Err() == nil {
		log.Fatalf("muriexec: %v", err)
	}
}
