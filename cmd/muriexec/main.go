// Command muriexec runs a Muri executor agent on one machine: it
// registers its GPU inventory with the scheduler and executes
// interleaving groups with per-stage synchronization barriers.
//
// Usage:
//
//	muriexec -scheduler localhost:7800 -machine m0 -gpus 8
//
// -scheduler accepts a comma-separated address list (leader plus warm
// standbys): on disconnect the agent tries each in turn, so it finds a
// newly promoted leader without operator intervention, and running
// groups survive the failover (offered back for adoption on
// re-registration).
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"muri/internal/executor"
)

func main() {
	var (
		scheduler = flag.String("scheduler", "localhost:7800", "scheduler address, or comma-separated leader,standby list")
		machine   = flag.String("machine", "m0", "machine identifier")
		gpus      = flag.Int("gpus", 8, "GPU inventory to advertise")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*scheduler, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	agent := &executor.Agent{MachineID: *machine, GPUs: *gpus}
	log.Printf("muriexec: machine %s (%d GPUs) connecting to %s", *machine, *gpus, *scheduler)
	// Reconnect with backoff across scheduler restarts and failovers;
	// ^C exits.
	if err := agent.RunHA(ctx, addrs, 30*time.Second); err != nil && ctx.Err() == nil {
		log.Fatalf("muriexec: %v", err)
	}
}
