// Command murisim regenerates the paper's evaluation tables and figures
// through the trace-driven simulator.
//
// Usage:
//
//	murisim -experiment all                 # everything, paper scale
//	murisim -experiment table4 -quick       # one experiment, reduced scale
//	murisim -experiment figure9 -maxjobs 500
//	murisim -experiment figure10 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiments: table1, table2, table4, table5, figure8, figure9,
// figure10, figure11, figure12, figure13, figure14, fidelity, scale,
// faults, prediction, all.
//
// The scale experiment replays the 2,000- and 5,755-job Philly traces
// end-to-end (event-driven Muri-L), sweeps the sharded incremental
// muri-l-scale policy over -shards (default 1,2,4,8) on the 5,755-job
// trace, and adds the philly-10000 tier (plus philly-50k with -scale50k).
// It reports wall-clock time alongside the scheduling-path counters;
// `-quick` truncates the traces like every other experiment.
//
// The faults experiment replays trace 1 under the deterministic failure
// model at increasing failure rates (machine crashes, transient job
// faults, stragglers) and compares how Muri-L and the SRTF/SRSF
// baselines degrade.
//
// The prediction experiment drifts the execution truth away from the
// submitted profiles at increasing amplitudes and compares oracle,
// stale-profile, and online-estimator belief sources for SRTF and
// Muri-L, reporting the JCT cost of imperfect prediction plus the
// estimator's error score.
//
// -cpuprofile and -memprofile write pprof profiles of the run (inspect
// with `go tool pprof`), so scheduling-path regressions can be diagnosed
// against real experiment workloads.
//
// -trace-out, -timeline-out, and -explain switch murisim into
// single-run mode: one simulation of the trace1 workload under -policy
// (default muri-l), writing a Chrome trace-event JSON file (open in
// Perfetto or chrome://tracing to see the per-resource stage
// interleaving) and/or a JSONL job-lifecycle timeline. -explain
// attaches the decision-provenance builder (DESIGN.md §14) and prints
// the attribution sweep — where the workload's aggregate JCT went,
// cause by cause — plus one job's full explanation with -explain-job;
// combined with -trace-out, the per-job lifecycle spans land in the
// trace as real duration events:
//
//	murisim -trace-out trace.json -maxjobs 100
//	murisim -timeline-out timeline.jsonl -policy muri-s -maxjobs 200
//	murisim -explain -policy srtf -maxjobs 200
//	murisim -explain -explain-job 7 -trace-out trace.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"muri/internal/experiments"
	"muri/internal/explain"
	"muri/internal/sched"
	"muri/internal/sim"
	"muri/internal/telemetry"
	"muri/internal/trace"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which table/figure to regenerate")
		quick      = flag.Bool("quick", false, "reduced scale for a fast smoke run")
		machines   = flag.Int("machines", 8, "number of machines in the simulated cluster")
		gpus       = flag.Int("gpus", 8, "GPUs per machine")
		maxJobs    = flag.Int("maxjobs", 0, "truncate each trace to this many jobs (0 = full)")
		seriesDir  = flag.String("series-out", "", "directory for per-policy Figure 8 time-series CSVs")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")

		shardsFlag = flag.String("shards", "", "comma-separated shard counts: the scale experiment's sweep (default 1,2,4,8); the first value parameterizes -policy muri-l-scale")
		scale50k   = flag.Bool("scale50k", false, "scale experiment: include the 50,000-job tier (slow)")

		// Single-run observability mode.
		traceOut    = flag.String("trace-out", "", "single run: write a Chrome trace-event JSON file (Perfetto)")
		timelineOut = flag.String("timeline-out", "", "single run: write the job-lifecycle timeline as JSONL")
		policy      = flag.String("policy", "muri-l", "single run: scheduling policy")
		incremental = flag.Bool("incremental", false, "single run: attach the incremental planner to the muri policies")
		explainRun  = flag.Bool("explain", false, "single run: fold decision provenance and print the wait-time attribution sweep")
		explainJob  = flag.Int64("explain-job", 0, "single run: also print this job's full explanation (implies -explain)")
	)
	flag.Parse()

	shardList, err := parseShards(*shardsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "murisim: %v\n", err)
		os.Exit(2)
	}

	if *traceOut != "" || *timelineOut != "" || *explainRun || *explainJob > 0 {
		if err := runSingle(*machines, *gpus, *maxJobs, *policy, *traceOut, *timelineOut, shardList, *incremental, *explainRun || *explainJob > 0, *explainJob); err != nil {
			fmt.Fprintf(os.Stderr, "murisim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "murisim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "murisim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "murisim: memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "murisim: memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	opt := experiments.Full()
	if *quick {
		opt = experiments.Quick()
	}
	opt.Machines = *machines
	opt.GPUsPerMachine = *gpus
	if *maxJobs > 0 {
		opt.MaxJobs = *maxJobs
	}
	opt.Shards = shardList
	opt.Scale50k = *scale50k

	type runner struct {
		name string
		run  func() experiments.Table
	}
	runners := []runner{
		{"table1", func() experiments.Table { return experiments.Table1() }},
		{"table2", func() experiments.Table { return experiments.Table2().Table }},
		{"table4", func() experiments.Table { _, t := opt.Table4(); return t }},
		{"table5", func() experiments.Table { _, t := opt.Table5(); return t }},
		{"figure8", func() experiments.Table {
			results, t := opt.Figure8()
			if *seriesDir != "" {
				for _, r := range results {
					path := filepath.Join(*seriesDir, "figure8-"+r.Policy+".csv")
					f, err := os.Create(path)
					if err != nil {
						fmt.Fprintf(os.Stderr, "murisim: %v\n", err)
						os.Exit(1)
					}
					if err := experiments.WriteSeriesCSV(f, r); err != nil {
						fmt.Fprintf(os.Stderr, "murisim: %v\n", err)
						os.Exit(1)
					}
					f.Close()
					fmt.Fprintf(os.Stderr, "murisim: wrote %s\n", path)
				}
			}
			return t
		}},
		{"figure9", func() experiments.Table { _, t := opt.Figure9(); return t }},
		{"figure10", func() experiments.Table { _, t := opt.Figure10(); return t }},
		{"figure11", func() experiments.Table { _, t := opt.Figure11(); return t }},
		{"figure12", func() experiments.Table { _, t := opt.Figure12(); return t }},
		{"figure13", func() experiments.Table { _, t := opt.Figure13(); return t }},
		{"figure14", func() experiments.Table { _, t := opt.Figure14(); return t }},
		{"scale", func() experiments.Table { _, t := opt.Scale(); return t }},
		{"faults", func() experiments.Table { _, t := opt.Faults(); return t }},
		{"prediction", func() experiments.Table { _, t := opt.Prediction(); return t }},
		{"fidelity", func() experiments.Table {
			res, err := experiments.RunFidelity(experiments.DefaultFidelityConfig())
			if err != nil {
				fmt.Fprintf(os.Stderr, "murisim: fidelity: %v\n", err)
				os.Exit(1)
			}
			return experiments.FidelityTable(res)
		}},
	}

	ran := false
	for _, r := range runners {
		if *experiment != "all" && *experiment != r.name {
			continue
		}
		ran = true
		start := time.Now()
		tbl := r.run()
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "murisim: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}

// parseShards parses a comma-separated shard-count list ("" = default).
func parseShards(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards value %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// runSingle simulates the trace1 workload once with instrumentation
// attached and writes the requested artifacts.
func runSingle(machines, gpus, maxJobs int, policyName, traceOut, timelineOut string, shards []int, incremental, explainRun bool, explainJob int64) error {
	p, err := singlePolicy(policyName, shards, incremental)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig()
	cfg.Machines = machines
	cfg.GPUsPerMachine = gpus
	var tracer *telemetry.Tracer
	if traceOut != "" {
		tracer = telemetry.NewTracer(0)
		cfg.Trace = tracer
	}
	cfg.RecordTimeline = timelineOut != ""
	if explainRun {
		cfg.Explain = explain.NewBuilder()
	}
	tc := trace.PhillyConfigs(machines * gpus)[0]
	if maxJobs > 0 && maxJobs < tc.Jobs {
		tc.Jobs = maxJobs
	}
	start := time.Now()
	res := sim.Run(cfg, trace.Generate(tc), p)
	fmt.Printf("single run: policy=%s jobs=%d avgJCT=%v makespan=%v preemptions=%d (wall %v)\n",
		res.Policy, res.Summary.Jobs, res.Summary.AvgJCT.Round(time.Second),
		res.Summary.Makespan.Round(time.Second), res.Preemptions,
		time.Since(start).Round(time.Millisecond))
	if traceOut != "" {
		if err := tracer.WriteFile(traceOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events, %d dropped)\n", traceOut, tracer.Len(), tracer.Dropped())
	}
	if timelineOut != "" {
		if err := writeTimeline(timelineOut, res.Timeline); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events)\n", timelineOut, len(res.Timeline))
	}
	if explainRun {
		printAttributionSweep(cfg.Explain)
		if explainJob > 0 {
			fmt.Print(cfg.Explain.RenderJob(explainJob))
		}
	}
	return nil
}

// printAttributionSweep aggregates every job's exact wait-time
// attribution into one table: where the workload's total JCT went,
// cause by cause (DESIGN.md §14). Per-job attributions each sum
// exactly to that job's JCT, so the table's total is the aggregate JCT
// to the nanosecond.
func printAttributionSweep(b *explain.Builder) {
	perCause := map[string]int64{}
	var total int64
	var jobs, done int
	for _, id := range b.Jobs() {
		at, ok := b.AttributionOf(id)
		if !ok {
			continue
		}
		jobs++
		if at.Done {
			done++
		}
		total += at.Total
		for c, d := range at.PerCause {
			perCause[c] += d
		}
	}
	fmt.Printf("attribution sweep: %d jobs (%d completed), aggregate JCT %v\n",
		jobs, done, time.Duration(total).Round(time.Second))
	for _, c := range explain.Causes {
		d := perCause[c]
		if d == 0 && c != explain.CauseService {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(d) / float64(total)
		}
		fmt.Printf("  %-16s %14v  %5.1f%%\n", c, time.Duration(d).Round(time.Second), share)
	}
}

// writeTimeline dumps timeline events as JSONL, one event per line.
func writeTimeline(path string, events []sim.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// singlePolicy maps a policy name to its constructor (the subset of
// murisched's table that makes sense for a one-off simulation). The
// shards list and incremental flag tune the muri policies.
func singlePolicy(name string, shards []int, incremental bool) (sched.Policy, error) {
	shard := 4
	if len(shards) > 0 {
		shard = shards[0]
	}
	tune := func(m *sched.Muri) *sched.Muri {
		if incremental {
			m.Grouping.Shards = shard
			m.EnableIncremental()
		}
		return m
	}
	switch name {
	case "fifo":
		return sched.FIFO(), nil
	case "srtf":
		return sched.SRTF(), nil
	case "srsf":
		return sched.SRSF(), nil
	case "muri-s":
		return tune(sched.NewMuriS()), nil
	case "muri-l":
		return tune(sched.NewMuriL()), nil
	case "muri-l-scale":
		return sched.NewMuriLScale(shard), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
