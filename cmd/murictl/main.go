// Command murictl is the client for a running Muri scheduler daemon.
//
// Usage:
//
//	murictl -scheduler localhost:7800 submit -model gpt2 -gpus 2 -iters 100000
//	murictl -scheduler localhost:7800 submit -f jobs.jsonl
//	murictl -scheduler localhost:7800 status
//	murictl -scheduler localhost:7800 wait -timeout 10m
//	murictl -scheduler localhost:7800 fault -job 3
//	murictl -scheduler localhost:7800 fault -machine machine-0
//	murictl -scheduler localhost:7800 trace -o trace.json
//	murictl -scheduler localhost:7800 explain -job 3
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"muri/internal/proto"
	"muri/internal/server"
	"muri/internal/trace"
	"muri/internal/workload"
)

func main() {
	scheduler := flag.String("scheduler", "localhost:7800", "scheduler address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "murictl: need a subcommand: submit | replay | status | wait | watch | fault | trace | explain | models | debug")
		os.Exit(2)
	}
	if args[0] == "models" {
		// Offline subcommand: no scheduler needed.
		for _, m := range workload.Zoo() {
			fmt.Printf("%-10s %-4s %-10s batch=%-4d bottleneck=%s\n",
				m.Name, m.Family, m.Dataset, m.BatchSize, m.Bottleneck())
		}
		return
	}
	c, err := server.Dial(*scheduler)
	if err != nil {
		fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	switch args[0] {
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		model := fs.String("model", "gpt2", "zoo model name")
		gpus := fs.Int("gpus", 1, "GPU count")
		iters := fs.Int64("iters", 10000, "training iterations")
		tenant := fs.String("tenant", "", "tenant name (rate-limiting key)")
		file := fs.String("f", "", "batch mode: JSONL file of job specs, one per line (- for stdin)")
		window := fs.Int("window", 256, "batch mode: max unacked submissions in flight")
		_ = fs.Parse(args[1:])
		if *file != "" {
			if err := submitBatchFile(c, *file, *window); err != nil {
				fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
				os.Exit(1)
			}
			return
		}
		id, err := c.SubmitSpec(proto.JobSpec{Model: *model, GPUs: *gpus, Iterations: *iters, Tenant: *tenant})
		if err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("submitted job %d (%s, %d GPUs, %d iterations)\n", id, *model, *gpus, *iters)
	case "status":
		st, err := c.Status()
		if err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
			os.Exit(1)
		}
		line := fmt.Sprintf("executors=%d pending=%d running=%d done=%d",
			st.Executors, st.Pending, st.Running, st.Done)
		if st.DeadLetter > 0 {
			line += fmt.Sprintf(" deadletter=%d", st.DeadLetter)
		}
		if st.Faults != nil {
			line += fmt.Sprintf(" crashes=%d transient=%d requeues=%d",
				st.Faults.Crashes, st.Faults.Transient, st.Faults.Requeues)
		}
		fmt.Println(line)
		if d := st.Durability; d != nil {
			dur := fmt.Sprintf("durability: role=%s term=%d wal=%d@%d lsn=%d snapshot_lsn=%d",
				d.Role, d.Term, d.WALSegment, d.WALOffset, d.WALLSN, d.SnapshotLSN)
			if d.SnapshotAge > 0 {
				dur += fmt.Sprintf(" snapshot_age=%v", d.SnapshotAge.Round(time.Second))
			}
			dur += fmt.Sprintf(" fsync_every=%d appends=%d fsyncs=%d", d.FsyncEvery, d.Appends, d.Fsyncs)
			if d.Role == "standby" {
				dur += fmt.Sprintf(" repl_lag=%d", d.ReplLag)
			} else if d.Standbys > 0 {
				dur += fmt.Sprintf(" standbys=%d repl_lag=%d", d.Standbys, d.ReplLag)
			}
			fmt.Println(dur)
		}
		if e := st.Engine; e != nil {
			line := fmt.Sprintf("engine: rounds=%d decisions=%d launches=%d preemptions=%d requeues=%d queue=%d",
				e.Rounds, e.Decisions, e.Launches, e.Preemptions, e.Requeues, e.QueueDepth)
			if e.Reprofiles > 0 {
				line += fmt.Sprintf(" reprofiles=%d", e.Reprofiles)
			}
			fmt.Println(line)
		}
		if p := st.Predictor; p != nil {
			line := fmt.Sprintf("predictor: models=%d samples=%d completions=%d",
				p.Models, p.Samples, p.Completions)
			if p.Reseeds > 0 {
				line += fmt.Sprintf(" reseeds=%d", p.Reseeds)
			}
			if p.ErrSamples > 0 {
				line += fmt.Sprintf(" mean_abs_err=%.3f (%d scored)", p.MeanAbsErr, p.ErrSamples)
			}
			fmt.Println(line)
		}
		if in := st.Ingest; in != nil {
			fmt.Printf("ingest: queued=%d accepted=%d rejected=%d throttled=%d batches=%d\n",
				in.QueueDepth, in.Accepted, in.Rejected, in.Throttled, in.Batches)
		}
		for _, j := range st.Jobs {
			line := fmt.Sprintf("job %d %-10s %-10s %d/%d iterations", j.ID, j.Model, j.State, j.DoneIterations, j.Iterations)
			if j.JCT > 0 {
				line += fmt.Sprintf("  JCT=%v", j.JCT.Round(time.Second))
			}
			if j.Faults > 0 {
				line += fmt.Sprintf("  faults=%d(last on %s)", j.Faults, j.FaultExecutor)
			}
			fmt.Println(line)
		}
	case "fault":
		fs := flag.NewFlagSet("fault", flag.ExitOnError)
		jobID := fs.Int64("job", 0, "fail this running job")
		machine := fs.String("machine", "", "crash this executor machine")
		_ = fs.Parse(args[1:])
		if (*jobID == 0) == (*machine == "") {
			fmt.Fprintln(os.Stderr, "murictl: fault needs exactly one of -job or -machine")
			os.Exit(2)
		}
		if err := c.InjectFault(*jobID, *machine); err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
			os.Exit(1)
		}
		if *jobID != 0 {
			fmt.Printf("injected fault into job %d\n", *jobID)
		} else {
			fmt.Printf("injected crash on machine %s\n", *machine)
		}
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		out := fs.String("o", "", "write the trace JSON here (default stdout)")
		_ = fs.Parse(args[1:])
		data, err := c.TraceSnapshot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
			os.Exit(1)
		}
		if *out == "" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes); open in https://ui.perfetto.dev\n", *out, len(data))
	case "explain":
		fs := flag.NewFlagSet("explain", flag.ExitOnError)
		jobID := fs.Int64("job", 0, "explain this job's waits")
		_ = fs.Parse(args[1:])
		if *jobID <= 0 {
			fmt.Fprintln(os.Stderr, "murictl: explain needs -job")
			os.Exit(2)
		}
		text, err := c.Explain(*jobID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(text)
	case "wait":
		fs := flag.NewFlagSet("wait", flag.ExitOnError)
		timeout := fs.Duration("timeout", 10*time.Minute, "how long to wait")
		_ = fs.Parse(args[1:])
		st, err := c.WaitAllDone(*timeout, time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("all %d jobs done\n", st.Done)
	case "replay":
		fs := flag.NewFlagSet("replay", flag.ExitOnError)
		path := fs.String("trace", "", "trace CSV (from tracegen)")
		timeScale := fs.Float64("timescale", 0.001, "virtual-to-wall compression for inter-arrival gaps")
		_ = fs.Parse(args[1:])
		if *path == "" {
			fmt.Fprintln(os.Stderr, "murictl: replay needs -trace")
			os.Exit(2)
		}
		f, err := os.Open(*path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
			os.Exit(1)
		}
		tr, err := trace.ReadCSV(*path, f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
			os.Exit(1)
		}
		ids, err := c.Replay(context.Background(), tr, *timeScale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v (submitted %d)\n", err, len(ids))
			os.Exit(1)
		}
		fmt.Printf("replayed %d jobs\n", len(ids))
	case "debug":
		if len(args) < 2 || args[1] != "crash" {
			fmt.Fprintln(os.Stderr, "murictl: debug needs the crash subcommand: murictl debug crash -point mid-round")
			os.Exit(2)
		}
		fs := flag.NewFlagSet("debug crash", flag.ExitOnError)
		point := fs.String("point", "mid-round", "crash point to arm (mid-round|mid-fsync|mid-snapshot)")
		_ = fs.Parse(args[2:])
		if err := c.DebugCrash(*point); err != nil {
			fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("armed crash point %q; the daemon will panic next time it passes it\n", *point)
	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		every := fs.Duration("every", time.Second, "refresh period")
		_ = fs.Parse(args[1:])
		for {
			st, err := c.Status()
			if err != nil {
				fmt.Fprintf(os.Stderr, "murictl: %v\n", err)
				os.Exit(1)
			}
			line := fmt.Sprintf("executors=%d pending=%d running=%d done=%d",
				st.Executors, st.Pending, st.Running, st.Done)
			if v, ok := st.Extra["avg_jct_s"].(float64); ok {
				line += fmt.Sprintf(" avgJCT=%v", (time.Duration(v * float64(time.Second))).Round(time.Second))
			}
			fmt.Println(line)
			if len(st.Jobs) > 0 && st.Pending == 0 && st.Running == 0 {
				return
			}
			time.Sleep(*every)
		}
	default:
		fmt.Fprintf(os.Stderr, "murictl: unknown subcommand %q\n", args[0])
		os.Exit(2)
	}
}

// submitBatchFile streams every spec in a JSONL file over one pipelined
// connection, printing a per-job accept/reject line. A rejected job
// does not abort the batch; the exit status reflects whether every job
// was accepted.
func submitBatchFile(c *server.Client, path string, window int) error {
	var r *os.File
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	stream := c.SubmitStream(window)
	var accepted, rejected int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for res := range stream.Results() {
			if res.Err != nil {
				rejected++
				fmt.Printf("job #%d rejected: %v\n", res.Seq, res.Err)
				continue
			}
			accepted++
			fmt.Printf("job #%d accepted as id %d (%v)\n", res.Seq, res.ID, res.RTT.Round(time.Microsecond))
		}
	}()

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var sent, badLines int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var spec proto.JobSpec
		if err := json.Unmarshal([]byte(line), &spec); err != nil {
			badLines++
			fmt.Fprintf(os.Stderr, "murictl: skipping malformed line: %v\n", err)
			continue
		}
		if err := stream.Send(spec); err != nil {
			stream.CloseSend()
			<-done
			return fmt.Errorf("submit stream broke after %d sends: %w", sent, err)
		}
		sent++
	}
	stream.CloseSend()
	<-done
	if err := sc.Err(); err != nil {
		return err
	}
	if err := stream.Err(); err != nil {
		return err
	}
	fmt.Printf("batch done: %d accepted, %d rejected, %d malformed lines\n", accepted, rejected, badLines)
	if rejected > 0 || badLines > 0 {
		return fmt.Errorf("%d of %d jobs not accepted", rejected+badLines, sent+badLines)
	}
	return nil
}
