package muri_test

import (
	"fmt"
	"time"

	"muri"
)

// ExampleEfficiency reproduces the paper's §4.1 example: interleaving two
// perfectly complementary jobs yields efficiency 1.0 on the two resources
// they use (here expressed over all four resource types).
func ExampleEfficiency() {
	cpuHeavy := muri.StageTimes{0, 2 * time.Second, 1 * time.Second, 0}
	gpuHeavy := muri.StageTimes{0, 1 * time.Second, 2 * time.Second, 0}
	gamma := muri.Efficiency([]muri.StageTimes{cpuHeavy, gpuHeavy})
	fmt.Printf("gamma = %.2f\n", gamma)
	// Output: gamma = 0.38
}

// ExamplePlanGroup plans the Table 2 group: the four zoo models that are
// bottlenecked on four different resources.
func ExamplePlanGroup() {
	var profiles []muri.StageTimes
	for _, name := range []string{"shufflenet", "a2c", "gpt2", "vgg16"} {
		m, _ := muri.ModelByName(name)
		profiles = append(profiles, m.Stages)
	}
	plan := muri.PlanGroup(profiles)
	fmt.Printf("group of %d jobs, efficiency %.2f\n", len(plan.Order), plan.Efficiency)
	// Output: group of 4 jobs, efficiency 0.64
}

// ExampleModelByName shows the model zoo lookup.
func ExampleModelByName() {
	m, _ := muri.ModelByName("a2c")
	fmt.Printf("%s is %s-bound\n", m.Name, m.Bottleneck())
	// Output: a2c is cpu-bound
}

// ExampleSimulate runs a small deterministic trace under Muri-S.
func ExampleSimulate() {
	tr := muri.GenerateTrace(muri.TraceGen{
		Name: "example", Jobs: 20, Seed: 1, MaxGPUs: 8,
		MeanInterarrival: time.Minute,
		MedianDuration:   10 * time.Minute,
		MaxDuration:      30 * time.Minute,
	})
	cfg := muri.DefaultSimConfig()
	cfg.Machines = 1
	res := muri.Simulate(cfg, tr, muri.MuriS())
	fmt.Printf("completed %d jobs\n", res.Summary.Jobs)
	// Output: completed 20 jobs
}

// ExampleModelParallelWorkers splits BERT across a 2-stage pipeline (§7).
func ExampleModelParallelWorkers() {
	m, _ := muri.ModelByName("bert")
	workers, _ := muri.ModelParallelWorkers(m, muri.ModelParallelConfig{Workers: 2})
	fmt.Printf("head bottleneck: %s, tail bottleneck: %s\n",
		workers[0].Bottleneck(), workers[1].Bottleneck())
	// Output: head bottleneck: gpu, tail bottleneck: network
}
