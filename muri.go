// Package muri is a reproduction of "Multi-Resource Interleaving for Deep
// Learning Training" (SIGCOMM 2022): a multi-resource cluster scheduler
// for DL workloads that interleaves the staged, iterative computation of
// training jobs — storage IO, CPU preprocessing, GPU propagation, network
// synchronization — across jobs in time, grouped by a Blossom-based
// multi-round matching algorithm.
//
// The package is a facade over the internal implementation:
//
//   - Workload modeling: Model, StageTimes, the Table 3 model zoo.
//   - The interleaving calculus of §4 (Eq. 1–4): Efficiency, PlanGroup.
//   - Scheduling policies: Muri-S/Muri-L and the evaluated baselines.
//   - A trace-driven cluster simulator plus the Philly-like trace
//     generator used by the paper's evaluation.
//   - A distributed prototype: scheduler daemon, executor agent, client.
//   - The experiment harness that regenerates every table and figure.
package muri

import (
	"time"

	"muri/internal/core"
	"muri/internal/experiments"
	"muri/internal/interleave"
	"muri/internal/metrics"
	"muri/internal/sched"
	"muri/internal/server"
	"muri/internal/sim"
	"muri/internal/trace"
	"muri/internal/workload"
)

// Resource identifies one of the four resource types a training stage
// occupies; see the constants below.
type Resource = workload.Resource

// The four resource types of a DL training iteration, in canonical stage
// order.
const (
	Storage = workload.Storage
	CPU     = workload.CPU
	GPU     = workload.GPU
	Network = workload.Network
)

// NumResources is k, the number of resource types.
const NumResources = workload.NumResources

// StageTimes is the per-iteration stage-duration vector of a job, indexed
// by Resource.
type StageTimes = workload.StageTimes

// Model is a DL model with its measured resource profile.
type Model = workload.Model

// Models returns the evaluation model zoo (Table 3): ResNet18,
// ShuffleNet, VGG16/19, BERT, GPT-2, A2C and DQN.
func Models() []Model { return workload.Zoo() }

// ModelByName looks a zoo model up by name.
func ModelByName(name string) (Model, error) { return workload.ByName(name) }

// Efficiency computes the interleaving efficiency γ (Eq. 4) of jobs
// executed in the given order with cyclic stage offsets.
func Efficiency(profiles []StageTimes) float64 { return interleave.Efficiency(profiles) }

// GroupIterationTime computes Eq. 3: the duration of one group iteration
// for jobs in the given order.
func GroupIterationTime(profiles []StageTimes) time.Duration {
	return interleave.IterationTime(profiles)
}

// GroupPlan is an interleaving execution plan for one group.
type GroupPlan = interleave.Plan

// PlanGroup finds the best stage ordering for a group of at most
// NumResources jobs and returns its plan (ordering, iteration time,
// efficiency), using the default contention model.
func PlanGroup(profiles []StageTimes) GroupPlan {
	return interleave.DefaultConfig.PlanGroup(profiles, false)
}

// GroupingConfig configures the core grouping algorithm (Algorithm 1).
type GroupingConfig = core.Config

// DefaultGrouping returns the standard Muri grouping configuration.
func DefaultGrouping() GroupingConfig { return core.DefaultConfig() }

// Policy is a cluster scheduling policy.
type Policy = sched.Policy

// MuriScheduler is the paper's scheduler; its exported fields select the
// ablation variants (group-size cap, ordering, Blossom on/off, sticky
// groups). A MuriScheduler instance carries state (sticky-group memory)
// and must not be shared across concurrent simulations.
type MuriScheduler = sched.Muri

// MuriS returns the Muri scheduler with SRSF priorities (known job
// durations).
func MuriS() *MuriScheduler { return sched.NewMuriS() }

// MuriL returns the Muri scheduler with 2D-LAS priorities (unknown job
// durations).
func MuriL() *MuriScheduler { return sched.NewMuriL() }

// Baseline policies evaluated in the paper.
func FIFO() Policy     { return sched.FIFO() }
func SRTF() Policy     { return sched.SRTF() }
func SRSF() Policy     { return sched.SRSF() }
func Tiresias() Policy { return sched.Tiresias() }
func Themis() Policy   { return sched.Themis() }
func AntMan() Policy   { return sched.AntMan{} }

// Gittins returns the Gittins-index variant of Tiresias (an extension:
// the paper evaluates the 2D-LAS configuration).
func Gittins() Policy { return sched.NewGittins() }

// DRF returns job-level Dominant Resource Fairness, and Tetris the
// alignment-score multi-resource packer — the classic space-dimension
// multi-resource schedulers the paper contrasts with (§8). On DL
// workloads both degenerate to SRTF-like behavior (§6.1).
func DRF() Policy    { return sched.DRF{} }
func Tetris() Policy { return sched.Tetris{} }

// ModelParallelConfig controls pipeline-parallel profile splitting (§7).
type ModelParallelConfig = workload.ModelParallelConfig

// ModelParallelWorkers splits a model's profile into per-pipeline-worker
// stage vectors following the paper's §7 sketch; each worker schedules
// like a normal staged job.
func ModelParallelWorkers(m Model, cfg ModelParallelConfig) ([]StageTimes, error) {
	return workload.ModelParallelWorkers(m, cfg)
}

// CDF is an empirical JCT distribution; JCTDistribution builds one from a
// finished simulation.
type CDF = metrics.CDF

// JCTDistribution returns the JCT CDF of a simulation result.
func JCTDistribution(res SimResult) CDF { return metrics.JCTCDF(res.Jobs) }

// Trace is a job trace; TraceSpec is one record.
type (
	Trace     = trace.Trace
	TraceSpec = trace.Spec
	TraceGen  = trace.GenConfig
)

// GenerateTrace produces a deterministic synthetic Philly-like trace.
func GenerateTrace(cfg TraceGen) Trace { return trace.Generate(cfg) }

// PhillyTraces returns the four standard evaluation traces for a cluster
// with the given GPU capacity.
func PhillyTraces(maxGPUs int) []Trace {
	var out []Trace
	for _, cfg := range trace.PhillyConfigs(maxGPUs) {
		out = append(out, trace.Generate(cfg))
	}
	return out
}

// SimConfig configures the trace-driven simulator; SimResult is a run's
// outcome; Summary aggregates the end-of-run metrics.
type (
	SimConfig = sim.Config
	SimResult = sim.Result
	Summary   = metrics.Summary
)

// DefaultSimConfig returns the paper's testbed configuration: 8 machines
// × 8 GPUs, 6-minute scheduling interval.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Simulate replays a trace under the policy and returns metrics.
func Simulate(cfg SimConfig, tr Trace, p Policy) SimResult { return sim.Run(cfg, tr, p) }

// Experiments exposes the table/figure harness; see ExperimentOptions.
type ExperimentOptions = experiments.Options

// FullExperiments returns paper-scale experiment options; and
// QuickExperiments a reduced-scale variant for smoke runs.
func FullExperiments() ExperimentOptions  { return experiments.Full() }
func QuickExperiments() ExperimentOptions { return experiments.Quick() }

// Distributed prototype types: the scheduler daemon, its configuration,
// and the submission client. Executor agents live in cmd/muriexec.
type (
	Server       = server.Server
	ServerConfig = server.Config
	Client       = server.Client
)

// NewServer creates a scheduler daemon.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// DialScheduler connects a client to a running scheduler daemon.
func DialScheduler(addr string) (*Client, error) { return server.Dial(addr) }
